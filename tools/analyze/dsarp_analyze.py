#!/usr/bin/env python3
"""dsarp-analyze: determinism audit for the bit-identical contracts.

The event engine, the sharded SweepRunner, and the multi-tenant
traffic injector all promise byte-identical results across
cycle-vs-event engines, any ``--jobs`` count, and skipTicks replay.
The bug classes that silently break those promises are statically
detectable; each one here is a rule with a repo-specific allowlist:

1. ordered-iteration -- a range-for or ``.begin()`` iterator loop over
   a ``std::unordered_map``/``unordered_set``.  Hash-table iteration
   order is implementation- and insertion-history-dependent; the
   moment it feeds a stat counter, the command log, a histogram, or an
   energy accumulator, two bit-identical runs stop being comparable.
   Iterate a sorted copy, or keep the container vector-backed.

2. blessed-rng-sites -- an ``Rng`` draw (next/below/uniform/chance/
   discard) outside the audited draw sites.  The event engine's
   skipTicks replays exactly the draws a skipped tick would have made;
   a draw added anywhere else desynchronizes the stream between the
   cycle and event engines.  Blessed: workload generation, the traffic
   injector's arrival instants, the opportunistic-probe path in the
   controller (the oppDraws_ replay contract), and the refresh
   schedulers' idle-bank picks, all listed in RNG_TUS.

3. fp-accumulation-order -- a ``double`` ``+=`` reduction inside a
   loop outside the blessed accumulation points (FP_ACCUM_TUS).
   Floating-point addition is not associative; when shard or container
   order can change, the sum -- and every figure derived from it --
   changes in the last ulp and the byte-identity gate trips.

4. stat-write-outside-accounting -- mutation of a component's stat
   counters (``stats_.x``, ``.stats.x``, or through a ``stats()``
   accessor) outside the owning component's accounting TU
   (STAT_ACCOUNTING_TUS).  Scattered writers make the counters
   impossible to audit for engine bit-identity.

5. pointer-ordered-containers -- ``std::map``/``std::set`` (or
   ``std::less``) keyed on a raw pointer.  Pointer order is allocator
   order; it varies run to run under ASLR and across ``--jobs``
   shards, so anything iterated from such a container is
   nondeterministic even though the container is "ordered".

False positives are suppressed in place with a documented comment on
the offending line or the line above::

    // dsarp-analyze: allow(fp-accumulation-order): indexed channel
    // order is deterministic

Exit status 0 when clean, 1 with findings (one
``file:line: rule: message`` per line), 2 on usage errors.
``--self-test`` seeds one violation per rule in a temp tree and
asserts each is caught (and that every allowlist and the suppression
syntax actually work).  Translation units come from
``compile_commands.json`` when the build tree provides one, else from
the source globs.
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import cpptok  # noqa: E402

REPO = Path(__file__).resolve().parent.parent.parent

RULES = (
    "ordered-iteration",
    "blessed-rng-sites",
    "fp-accumulation-order",
    "stat-write-outside-accounting",
    "pointer-ordered-containers",
)

# --- Allowlists (repo-relative), with the rationale for each entry. ---

# Rng draw sites whose determinism contract is audited by tests:
#   - rng.hh: the generator itself (discard() is the replay primitive).
#   - workload/, core/trace.cc, core/cache.cc: synthetic generation,
#     seeded per run; draws happen at fixed points of the instruction
#     stream.
#   - workload/arrival.*: the injector draws only at arrival instants
#     (pinned by tests/test_traffic.cc bit-identity cases).
#   - controller/controller.cc: the opportunistic-probe draw, replayed
#     by skipTicks via the oppDraws_ counter.
#   - refresh/{darp,hira,same_bank}.cc: idle-bank/coverage picks on the
#     scheduler stream (schedulerRng), identical in both engines.
#   - sim/parallel.*: pointSeed derivation (splitmix64 per point).
RNG_TUS = {
    "src/common/rng.hh",
    "src/workload/workload.cc",
    "src/workload/arrival.hh",
    "src/workload/arrival.cc",
    "src/core/trace.cc",
    "src/core/cache.cc",
    "src/controller/controller.cc",
    "src/refresh/darp.cc",
    "src/refresh/hira.cc",
    "src/refresh/same_bank.cc",
    "src/sim/parallel.hh",
    "src/sim/parallel.cc",
}

# Blessed floating-point accumulation points: reductions whose
# iteration order is fixed (indexed loops over per-channel/per-core
# vectors) and pinned by the golden baselines.
FP_ACCUM_TUS = {
    "src/common/stats.cc",   # RunningStat / LatencyHistogram merge
    "src/common/stats.hh",
    "src/sim/energy.cc",     # per-channel energy assembly
    "src/sim/metrics.cc",    # WS/HS summary reductions
}

# The accounting TUs: each owns the stats struct it mutates.
STAT_ACCOUNTING_TUS = {
    "src/dram/channel.hh",        # ChannelStats (inline tick hooks)
    "src/dram/channel.cc",
    "src/controller/controller.cc",  # ControllerStats
    "src/core/core.cc",           # CoreStats
    "src/workload/arrival.cc",    # TenantStats
    "src/refresh/scheduler.hh",   # RefreshSchedStats (base resets)
    "src/refresh/all_bank.cc",
    "src/refresh/per_bank.cc",
    "src/refresh/elastic.cc",
    "src/refresh/fgr.cc",
    "src/refresh/darp.cc",
    "src/refresh/hira.cc",
    "src/refresh/same_bank.cc",
    "src/common/stats.cc",        # the stat helpers themselves
}

SOURCE_GLOBS = ("src/**/*.cc", "src/**/*.hh")

RNG_DRAW_METHODS = {"next", "below", "uniform", "chance", "discard"}
MUTATING_OPS = {"=", "+=", "-=", "*=", "/=", "++", "--", "|=", "&=", "^="}


def source_files(root, compdb=None):
    """TUs to analyze: compile_commands.json entries under src/ when a
    build tree provides one, else the globs; headers always via glob."""
    files = []
    seen = set()
    if compdb:
        for entry in compdb:
            path = Path(entry.get("file", ""))
            if not path.is_absolute():
                path = Path(entry.get("directory", ".")) / path
            try:
                rel = path.resolve().relative_to(root.resolve())
            except ValueError:
                continue
            if rel.parts[:1] == ("src",) and rel not in seen:
                seen.add(rel)
                files.append(root / rel)
    for pattern in SOURCE_GLOBS:
        for path in sorted(root.glob(pattern)):
            rel = path.relative_to(root)
            if rel not in seen:
                seen.add(rel)
                files.append(path)
    return files


def load_compdb(root, build_dirs=("build", "build-asan", "build-tsan")):
    for d in build_dirs:
        db = root / d / "compile_commands.json"
        if db.exists():
            try:
                return json.loads(db.read_text())
            except json.JSONDecodeError:
                return None
    return None


class FileInfo:
    """Token stream plus per-file declaration tables."""

    def __init__(self, rel, text):
        self.rel = rel
        self.toks, self.suppress = cpptok.lex(text)
        self.unordered = set()    # names declared as unordered containers
        self.doubles = set()      # names declared double
        self.rng_vars = set()     # names declared Rng / Rng& / Rng*
        self.rng_fns = set()      # functions returning Rng&
        self._scan_decls()

    def _scan_decls(self):
        toks = self.toks
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in ("unordered_map", "unordered_set",
                          "unordered_multimap", "unordered_multiset"):
                j = cpptok.skip_template_args(toks, i + 1)
                if j > i + 1 and j < len(toks) and toks[j].kind == "id":
                    self.unordered.add(toks[j].text)
                # `using Alias = std::unordered_map<...>;` -> treat the
                # alias name as an unordered type for later decls.
                if i >= 3 and toks[i - 1].text == "::":
                    i -= 2
                if (i >= 2 and toks[i - 1].text == "=" and
                        toks[i - 2].kind == "id"):
                    self.unordered.add(toks[i - 2].text)
            elif t.text == "double":
                j = i + 1
                while j < len(toks) and toks[j].text in ("&", "*", "const"):
                    j += 1
                if (j < len(toks) and toks[j].kind == "id" and
                        j + 1 < len(toks) and
                        toks[j + 1].text in (";", "=", ",", "{", ")")):
                    self.doubles.add(toks[j].text)
            elif t.text == "Rng":
                j = i + 1
                is_ref = False
                while j < len(toks) and toks[j].text in ("&", "*", "const"):
                    is_ref = is_ref or toks[j].text == "&"
                    j += 1
                if j < len(toks) and toks[j].kind == "id":
                    if j + 1 < len(toks) and toks[j + 1].text == "(":
                        if is_ref:
                            self.rng_fns.add(toks[j].text)
                    else:
                        self.rng_vars.add(toks[j].text)

    def suppressed(self, line, rule):
        if rule in self.suppress.get(line, set()):
            return True
        # A suppression comment may sit on its own line (or a short
        # comment block) directly above the flagged statement.
        token_lines = getattr(self, "_token_lines", None)
        if token_lines is None:
            token_lines = {t.line for t in self.toks}
            self._token_lines = token_lines
        probe = line - 1
        while probe > 0 and probe >= line - 8 and probe not in token_lines:
            if rule in self.suppress.get(probe, set()):
                return True
            probe -= 1
        return False


def chain_start(toks, i):
    """Index of the first token of the member-access chain whose last
    identifier is toks[i]: walks back over `(id|)) (.|->)` pairs, so
    for ``a.b().c_`` it lands on ``a``."""
    j = i
    while j >= 2 and toks[j - 1].text in (".", "->"):
        k = j - 2
        if toks[k].text == ")":
            depth = 0
            while k >= 0:
                if toks[k].text == ")":
                    depth += 1
                elif toks[k].text == "(":
                    depth -= 1
                    if depth == 0:
                        k -= 1
                        break
                k -= 1
        if k < 0 or toks[k].kind != "id":
            break
        j = k
    return j


def receiver_name(toks, i):
    """Name of the receiver of the member access at toks[i] ('.'/'->').

    Walks back over one trailing call ``()`` so ``schedulerRng().next``
    resolves to ``schedulerRng``.
    """
    j = i - 1
    if j >= 0 and toks[j].text == ")":
        depth = 0
        while j >= 0:
            if toks[j].text == ")":
                depth += 1
            elif toks[j].text == "(":
                depth -= 1
                if depth == 0:
                    j -= 1
                    break
            j -= 1
    if j >= 0 and toks[j].kind == "id":
        return toks[j].text
    return None


def loop_lines(toks):
    """Set of line numbers inside loop bodies (incl. the loop header)."""
    lines = set()
    n = len(toks)
    spans = []  # (start_idx, end_idx) token ranges inside loops

    def matching(open_i, open_ch, close_ch):
        depth = 0
        k = open_i
        while k < n:
            if toks[k].text == open_ch:
                depth += 1
            elif toks[k].text == close_ch:
                depth -= 1
                if depth == 0:
                    return k
            k += 1
        return n - 1

    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in ("for", "while"):
            # `while` of a do-while has no body after it; the `do`
            # branch below already covered the body.
            j = i + 1
            if j < n and toks[j].text == "(":
                close = matching(j, "(", ")")
                body = close + 1
                if body < n and toks[body].text == "{":
                    end = matching(body, "{", "}")
                else:
                    end = body
                    while end < n and toks[end].text != ";":
                        if toks[end].text == "{":
                            end = matching(end, "{", "}")
                        end += 1
                spans.append((i, end))
                i = body
                continue
        elif t.kind == "id" and t.text == "do":
            if i + 1 < n and toks[i + 1].text == "{":
                end = matching(i + 1, "{", "}")
                spans.append((i, end))
        i += 1
    for start, end in spans:
        for k in range(start, min(end + 1, n)):
            lines.add(toks[k].line)
    return lines


# ---------------------------------------------------------------------------
# Rules.  Each takes (info, ctx, findings); ctx carries tree-wide
# declaration tables so member containers declared in a header are
# recognized in the .cc that iterates them.
# ---------------------------------------------------------------------------

def rule_ordered_iteration(info, ctx, findings):
    toks = info.toks
    names = info.unordered | ctx["unordered_members"]
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in names:
            continue
        line = t.line
        # Range-for: `for ( decl : expr.name )` -- walk back over the
        # member chain, then scan for ':' inside a for header.
        j = chain_start(toks, i) - 1
        if j >= 0 and toks[j].text == ":":
            k = j - 1
            depth = 0
            while k >= 0:
                txt = toks[k].text
                if txt == ")":
                    depth += 1
                elif txt == "(":
                    if depth == 0:
                        break
                    depth -= 1
                elif txt in (";", "{", "}"):
                    k = -1
                    break
                k -= 1
            if (k > 0 and toks[k - 1].kind == "id" and
                    toks[k - 1].text == "for"):
                emit(findings, info, line, "ordered-iteration",
                     f"range-for over unordered container '{t.text}'; "
                     "iteration order leaks into results -- iterate a "
                     "sorted copy or use vector-backed storage")
                continue
        # Iterator loop: `name.begin()` (or cbegin) anywhere.
        if (i + 2 < len(toks) and toks[i + 1].text in (".", "->") and
                toks[i + 2].kind == "id" and
                toks[i + 2].text in ("begin", "cbegin", "rbegin")):
            emit(findings, info, line, "ordered-iteration",
                 f"iterator walk over unordered container '{t.text}'; "
                 "iteration order leaks into results -- iterate a "
                 "sorted copy or use vector-backed storage")


def rule_blessed_rng_sites(info, ctx, findings):
    rel = str(info.rel)
    if rel in RNG_TUS:
        return
    toks = info.toks
    rng_vars = info.rng_vars | ctx["rng_members"]
    rng_fns = ctx["rng_fns"]
    for i, t in enumerate(toks):
        if (t.kind != "id" or t.text not in RNG_DRAW_METHODS or
                i == 0 or toks[i - 1].text not in (".", "->") or
                i + 1 >= len(toks) or toks[i + 1].text != "("):
            continue
        recv = receiver_name(toks, i - 1)
        if recv is None:
            continue
        if (recv in rng_vars or recv in rng_fns or
                "rng" in recv.lower()):
            emit(findings, info, t.line, "blessed-rng-sites",
                 f"Rng draw '{recv}.{t.text}()' outside the blessed "
                 "draw sites; a stray draw desynchronizes skipTicks "
                 "replay between the cycle and event engines")


def rule_fp_accumulation_order(info, ctx, findings):
    rel = str(info.rel)
    if rel in FP_ACCUM_TUS:
        return
    toks = info.toks
    in_loop = ctx["loop_lines"][rel]
    # Locals resolve within their own file; only member-style names
    # (trailing underscore) carry over from headers tree-wide, so a
    # local `x` here never collides with a `double x` elsewhere.
    doubles = info.doubles | ctx["double_members"]
    for i, t in enumerate(toks):
        if t.text != "+=" or t.kind != "punct":
            continue
        if t.line not in in_loop:
            continue
        j = i - 1
        if j < 0 or toks[j].kind != "id":
            continue
        name = toks[j].text
        # Accept member chains: the accumulated lvalue is the last
        # identifier before '+='.
        if name in doubles:
            emit(findings, info, t.line, "fp-accumulation-order",
                 f"double accumulation '{name} +=' inside a loop "
                 "outside the blessed accumulation points; if shard or "
                 "container order can change, the fp sum changes -- "
                 "accumulate at a blessed point or document with a "
                 "suppression")


def rule_stat_write_outside_accounting(info, ctx, findings):
    rel = str(info.rel)
    if rel in STAT_ACCOUNTING_TUS:
        return
    toks = info.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ("stats_", "stats"):
            continue
        # `stats()` accessor or `x.stats.` / `x.stats_.` member chain;
        # bare local variables named `stats` don't count unless
        # accessed as a member of something or a member of this.
        is_accessor = (i + 1 < n and toks[i + 1].text == "(" and
                       i + 2 < n and toks[i + 2].text == ")")
        j = i + (3 if is_accessor else 1)
        if t.text == "stats" and not is_accessor:
            if i == 0 or toks[i - 1].text not in (".", "->"):
                continue
        if j >= n or toks[j].text not in (".", "->"):
            continue
        if j + 1 >= n or toks[j + 1].kind != "id":
            continue
        field = toks[j + 1].text
        k = j + 2
        # `.merge(` and method calls that mutate are accounted writes
        # only in accounting TUs; flag assignments and inc/dec here.
        start = chain_start(toks, i)
        if k < n and toks[k].text in MUTATING_OPS and toks[k].text != "=":
            pass
        elif k < n and toks[k].text == "=":
            if k + 1 < n and toks[k + 1].text == "=":
                continue  # == comparison
        elif start >= 1 and toks[start - 1].text in ("++", "--"):
            pass  # prefix inc/dec of the whole chain
        else:
            continue
        emit(findings, info, t.line, "stat-write-outside-accounting",
             f"stat counter '{field}' mutated outside the owning "
             "component's accounting TU; route the write through the "
             "component so engine bit-identity stays auditable")


def rule_pointer_ordered_containers(info, ctx, findings):
    toks = info.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in (
                "map", "set", "multimap", "multiset", "less", "greater"):
            continue
        # Require std:: (or at least a template argument list).
        if i < 2 or toks[i - 1].text != "::" or toks[i - 2].text != "std":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "<":
            continue
        arg = cpptok.template_arg_tokens(toks, i + 1)
        if any(a.text == "*" for a in arg):
            emit(findings, info, t.line, "pointer-ordered-containers",
                 f"std::{t.text} keyed on a raw pointer; pointer order "
                 "is allocator order and varies under ASLR/--jobs -- "
                 "key on a stable id instead")


RULE_FNS = {
    "ordered-iteration": rule_ordered_iteration,
    "blessed-rng-sites": rule_blessed_rng_sites,
    "fp-accumulation-order": rule_fp_accumulation_order,
    "stat-write-outside-accounting": rule_stat_write_outside_accounting,
    "pointer-ordered-containers": rule_pointer_ordered_containers,
}


def emit(findings, info, line, rule, message):
    if info.suppressed(line, rule):
        return
    findings.append(f"{info.rel}:{line}: {rule}: {message}")


def analyze(root, rules=RULES, compdb=None):
    root = Path(root)
    infos = []
    for path in source_files(root, compdb):
        try:
            text = path.read_text(errors="replace")
        except OSError:
            continue
        infos.append(FileInfo(path.relative_to(root), text))

    # Tree-wide declaration tables: members declared in headers must be
    # recognized in the .cc files that use them.
    def members(names):
        return {n for n in names if n.endswith("_")}

    ctx = {
        "unordered_members": set(),
        "double_members": set(),
        "rng_members": set(),
        "rng_fns": set(),
        "loop_lines": {},
    }
    for info in infos:
        ctx["unordered_members"] |= members(info.unordered)
        ctx["double_members"] |= members(info.doubles)
        ctx["rng_members"] |= members(info.rng_vars)
        ctx["rng_fns"] |= info.rng_fns
        ctx["loop_lines"][str(info.rel)] = loop_lines(info.toks)

    findings = []
    for info in infos:
        for rule in rules:
            RULE_FNS[rule](info, ctx, findings)
    return findings


# ---------------------------------------------------------------------------
# Self-test: one seeded violation per rule, plus counterexamples that
# must stay clean (blessed TUs, suppression comments, ordered
# containers, non-double accumulators).  Mirrors tools/lint/lint.py.
# ---------------------------------------------------------------------------

# Keep SELF_TEST_SEEDS keys in sync with RULES; lint.py rule 5
# (selftest-coverage) fails the build when a rule has no seed here.
SELF_TEST_SEEDS = {
    "ordered-iteration": (
        "src/sim/bad_iter.cc",
        "#include <unordered_map>\n"
        "struct S { std::unordered_map<int, int> hist_; };\n"
        "int sum(S &s) {\n"
        "    int total = 0;\n"
        "    for (const auto &kv : s.hist_) total += kv.second;\n"
        "    return total;\n"
        "}\n"),
    "blessed-rng-sites": (
        "src/dram/bad_rng.cc",
        "struct Rng { double uniform(); };\n"
        "double jitter(Rng &rng) { return rng.uniform(); }\n"),
    "fp-accumulation-order": (
        "src/sim/bad_sum.cc",
        "double total(const double *xs, int n) {\n"
        "    double sum = 0;\n"
        "    for (int i = 0; i < n; ++i) sum += xs[i];\n"
        "    return sum;\n"
        "}\n"),
    "stat-write-outside-accounting": (
        "src/sim/bad_stat.cc",
        "struct ChannelStats { unsigned long long reads; };\n"
        "struct Ch { ChannelStats stats_; };\n"
        "void poke(Ch &ch) { ++ch.stats_.reads; }\n"),
    "pointer-ordered-containers": (
        "src/dram/bad_ptr.cc",
        "#include <map>\n"
        "struct Bank;\n"
        "std::map<Bank *, int> order_;\n"),
}

# Counterexamples: each must produce zero findings.
SELF_TEST_CLEAN = {
    # Blessed RNG site: the workload generator draws on purpose.
    "src/workload/workload.cc":
        "struct Rng { double uniform(); };\n"
        "double pick(Rng &rng) { return rng.uniform(); }\n",
    # Blessed fp accumulation point.
    "src/common/stats.cc":
        "void add(double &sum_, const double *xs, int n) {\n"
        "    for (int i = 0; i < n; ++i) sum_ += xs[i];\n"
        "}\n",
    # Accounting TU mutating its own counters.
    "src/core/core.cc":
        "struct CoreStats { unsigned long long retired; };\n"
        "struct Core { CoreStats stats_; void tick() "
        "{ ++stats_.retired; } };\n",
    # Ordered map iteration is fine; string keys are fine.
    "src/sim/fine_map.cc":
        "#include <map>\n#include <string>\n"
        "int count(const std::map<std::string, int> &m) {\n"
        "    int n = 0;\n"
        "    for (const auto &kv : m) n += kv.second;\n"
        "    return n;\n"
        "}\n",
    # A documented suppression silences the finding.
    "src/sim/suppressed_sum.cc":
        "double total(const double *xs, int n) {\n"
        "    double sum = 0;\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        // dsarp-analyze: allow(fp-accumulation-order): index\n"
        "        // order is fixed\n"
        "        sum += xs[i];\n"
        "    }\n"
        "    return sum;\n"
        "}\n",
    # Integer accumulation in a loop: not an fp-order hazard.
    "src/sim/int_sum.cc":
        "long total(const long *xs, int n) {\n"
        "    long acc = 0;\n"
        "    for (int i = 0; i < n; ++i) acc += xs[i];\n"
        "    return acc;\n"
        "}\n",
}


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for rule, (rel, text) in SELF_TEST_SEEDS.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        findings = analyze(root)
        for rule in RULES:
            hits = [f for f in findings if f" {rule}: " in f]
            seed_rel = SELF_TEST_SEEDS[rule][0]
            if not any(seed_rel in f for f in hits):
                failures.append(
                    f"self-test: rule '{rule}' missed its seeded "
                    f"violation in {seed_rel} (findings: {findings})")

        # Counterexamples replace the seeds; the tree must go clean.
        for rel, _ in SELF_TEST_SEEDS.values():
            (root / rel).unlink()
        for rel, text in SELF_TEST_CLEAN.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        for f in analyze(root):
            failures.append(f"self-test: clean counterexample flagged: {f}")

    real = analyze(REPO, compdb=load_compdb(REPO))
    for f in real:
        failures.append(f"self-test: real tree not clean: {f}")

    for msg in failures:
        print(msg)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="determinism audit for the bit-identical contracts")
    parser.add_argument("--root", type=Path, default=REPO,
                        help="tree to analyze (default: the repo)")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule names and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="seed violations and assert detection")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        rc = self_test()
        if rc == 0:
            print("dsarp-analyze self-test: all seeded violations "
                  "caught, counterexamples clean")
        return rc

    rules = tuple(args.rule) if args.rule else RULES
    findings = analyze(args.root, rules=rules,
                       compdb=load_compdb(args.root))
    for f in findings:
        print(f)
    if findings:
        print(f"dsarp-analyze: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
