#!/usr/bin/env python3
"""Golden test for dsarp-analyze.

Runs the analyzer over tests/fixtures/analyze -- a tree seeding
exactly one violation per rule plus a suppressed counterexample -- and
asserts the exact ``file:line: rule`` output against expected.txt.
Registered as the ``analyze_golden`` ctest entry; a rule whose line
numbers drift, whose detection breaks, or whose suppression parsing
regresses fails here with a readable diff.
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import dsarp_analyze  # noqa: E402

FIXTURES = (Path(__file__).resolve().parent.parent.parent /
            "tests/fixtures/analyze")


def main():
    findings = dsarp_analyze.analyze(FIXTURES)
    got = sorted(re.sub(r"(: [a-z-]+): .*", r"\1", f) for f in findings)
    expected = [line for line in
                (FIXTURES / "expected.txt").read_text().splitlines()
                if line.strip()]
    if got != expected:
        print("analyze golden mismatch:")
        for line in expected:
            if line not in got:
                print(f"  missing: {line}")
        for line in got:
            if line not in expected:
                print(f"  extra:   {line}")
        return 1
    print(f"analyze golden: {len(got)} finding(s) match expected.txt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
