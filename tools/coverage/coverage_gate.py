#!/usr/bin/env python3
"""Line-coverage gate over src/ for the ctest suite.

Workflow (see the `coverage` CMake preset):

    cmake --preset coverage
    cmake --build build-coverage -j
    ctest --test-dir build-coverage -j
    python3 tools/coverage/coverage_gate.py --build build-coverage

The build instruments every target with ``--coverage``; running the
tests drops one .gcda note per object.  This script runs ``gcov
--json-format`` over all of them, merges the per-TU reports (a header
exercised by any TU counts as covered), restricts to files under
src/, writes the aggregate to ``coverage.json`` in the build dir, and
exits 1 when the line rate falls below the ratchet threshold.

The threshold only ratchets up: measure, then raise DEFAULT_THRESHOLD
toward the measured rate (leave a point or two of slack for run-to-run
jitter in death tests).  Lowering it needs a written justification in
the PR.

Clang's gcov-compatible profiling works through ``llvm-cov gcov``;
pass ``--gcov-tool "llvm-cov-14 gcov"`` (or similar) for such builds.

Exit status: 0 at/above threshold, 1 below, 2 on usage/tooling errors.
"""

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent

# The ratchet.  Raise toward the measured rate when coverage improves;
# never lower it without a written justification.
DEFAULT_THRESHOLD = 80.0


def gcov_json_reports(build_dir, gcov_tool):
    """Run gcov over every .gcda in the build tree; yield parsed JSON."""
    gcda = sorted(build_dir.rglob("*.gcda"))
    if not gcda:
        sys.exit(f"coverage_gate: no .gcda files under {build_dir}; "
                 "configure with -DDSARP_COVERAGE=ON and run ctest "
                 "first (exit 2)")
    reports = []
    with tempfile.TemporaryDirectory() as tmp:
        for chunk_start in range(0, len(gcda), 64):
            chunk = gcda[chunk_start:chunk_start + 64]
            cmd = [*gcov_tool, "--json-format", "--stdout",
                   *[str(p) for p in chunk]]
            proc = subprocess.run(cmd, capture_output=True, cwd=tmp)
            if proc.returncode != 0:
                sys.exit(f"coverage_gate: {' '.join(cmd[:2])} failed: "
                         f"{proc.stderr.decode(errors='replace')[:500]} "
                         "(exit 2)")
            # One JSON document per line per input file.
            for line in proc.stdout.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    reports.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    return reports


def merge_line_coverage(reports, source_root):
    """(file -> line -> hit) merged across TUs, src/ files only."""
    merged = {}
    for report in reports:
        for f in report.get("files", []):
            path = Path(f.get("file", ""))
            if not path.is_absolute():
                path = (source_root / path).resolve()
            try:
                rel = path.resolve().relative_to(REPO)
            except ValueError:
                continue
            if rel.parts[:1] != ("src",):
                continue
            lines = merged.setdefault(str(rel), {})
            for line in f.get("lines", []):
                no = line.get("line_number")
                if no is None:
                    continue
                hit = line.get("count", 0) > 0
                lines[no] = lines.get(no, False) or hit
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", type=Path,
                        default=REPO / "build-coverage",
                        help="instrumented build dir (default: "
                             "build-coverage)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="minimum src/ line rate in percent "
                             f"(default: the ratchet, "
                             f"{DEFAULT_THRESHOLD})")
    parser.add_argument("--gcov-tool", default="gcov",
                        help="gcov executable, possibly with "
                             "arguments, e.g. 'llvm-cov-14 gcov' for "
                             "clang builds (default: gcov)")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="where to write coverage.json (default: "
                             "<build>/coverage.json)")
    args = parser.parse_args()

    # gcov runs from a scratch cwd, so the build path must be absolute.
    args.build = args.build.resolve()
    gcov_tool = args.gcov_tool.split()
    if shutil.which(gcov_tool[0]) is None:
        sys.exit(f"coverage_gate: '{gcov_tool[0]}' not found (exit 2)")
    if not args.build.is_dir():
        sys.exit(f"coverage_gate: build dir {args.build} does not "
                 "exist (exit 2)")

    reports = gcov_json_reports(args.build, gcov_tool)
    merged = merge_line_coverage(reports, args.build)
    if not merged:
        sys.exit("coverage_gate: gcov reported no src/ lines; wrong "
                 "--gcov-tool for this compiler? (exit 2)")

    total = sum(len(lines) for lines in merged.values())
    covered = sum(sum(1 for hit in lines.values() if hit)
                  for lines in merged.values())
    rate = 100.0 * covered / total

    per_file = {
        path: {
            "lines_total": len(lines),
            "lines_covered": sum(1 for hit in lines.values() if hit),
        }
        for path, lines in sorted(merged.items())
        if lines  # Headers with no executable lines carry no signal.
    }
    out_path = args.json_out or args.build / "coverage.json"
    out_path.write_text(json.dumps({
        "line_rate_pct": round(rate, 2),
        "lines_covered": covered,
        "lines_total": total,
        "threshold_pct": args.threshold,
        "files": per_file,
    }, indent=2) + "\n")

    worst = sorted(per_file.items(),
                   key=lambda kv: kv[1]["lines_covered"] /
                                  max(1, kv[1]["lines_total"]))[:5]
    print(f"coverage: {covered}/{total} src/ lines = {rate:.2f}% "
          f"(threshold {args.threshold:.2f}%)")
    for path, stats in worst:
        pct = 100.0 * stats["lines_covered"] / max(1, stats["lines_total"])
        print(f"  lowest: {path}: {pct:.1f}% "
              f"({stats['lines_covered']}/{stats['lines_total']})")
    print(f"wrote {out_path}")

    if rate < args.threshold:
        print(f"coverage_gate: {rate:.2f}% is below the "
              f"{args.threshold:.2f}% ratchet (exit 1)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
