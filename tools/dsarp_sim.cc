/**
 * @file
 * dsarp_sim: command-line front end for one-off simulations.
 *
 * A thin shell over the library's layered configuration: every flag is
 * sugar for a key=value override on ExperimentConfig, applied in
 * precedence order defaults < --config file < DSARP_SET env < CLI.
 *
 * Usage:
 *   dsarp_sim [--mech NAME] [--map NAME] [--channels N]
 *             [--density 8|16|32] [--cores N]
 *             [--retention 32|64] [--subarrays N] [--cycles N]
 *             [--warmup N] [--seed N] [--workload-seed N]
 *             [--intensity 0|25|50|75|100] [--engine cycle|event]
 *             [--jobs N] [--config FILE] [--set key=value]
 *             [--list-mechs] [--list-maps] [--list-keys]
 *             [--list-benchmarks] [--help]
 *
 * Mechanism names come from the refresh-policy registry (--list-mechs);
 * adding a policy to the library makes it available here with no CLI
 * change.
 *
 * Prints the workload composition, per-core IPC against the alone-run
 * baseline, WS/HS/max-slowdown, refresh counters, and the energy
 * breakdown -- the same numbers the paper's tables are built from.
 * Every run also reports the read-latency distribution (mean and
 * p50/p99/p99.9); --traffic switches to the open-loop front end and
 * adds the per-tenant table and fairness figure.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "dram/address.hh"
#include "refresh/registry.hh"
#include "sim/cli.hh"
#include "sim/simulation.hh"
#include "workload/workload.hh"

using namespace dsarp;

namespace {

void
usage()
{
    std::printf(
        "dsarp_sim -- run one workload under one refresh mechanism\n\n"
        "  --mech NAME        refresh mechanism (--list-mechs)  [DSARP]\n"
        "  --spec NAME        DRAM spec, = dram.spec (--list-specs)\n"
        "                                                  [DDR3-1333]\n"
        "  --map NAME         address map, = address.map (--list-maps)\n"
        "                                                  [burst-ch]\n"
        "  --channels N       memory channels, = channels       [2]\n"
        "  --density GB       8 | 16 | 32                       [32]\n"
        "  --cores N          cores / workload slots            [8]\n"
        "  --retention MS     32 | 64                           [32]\n"
        "  --subarrays N      subarrays per bank                [8]\n"
        "  --cycles N         measured DRAM cycles  (env DSARP_BENCH_CYCLES)\n"
        "  --warmup N         warmup DRAM cycles    (env DSARP_BENCH_WARMUP)\n"
        "  --seed N           simulator seed                    [1]\n"
        "  --workload-seed N  workload mix seed                 [1]\n"
        "  --intensity PCT    0|25|50|75|100 intensive mix      [100]\n"
        "  --engine NAME      cycle | event, = sim.engine       [cycle]\n"
        "  --traffic MODE     open-loop arrivals, = traffic.mode\n"
        "                     (poisson|bursty|diurnal|trace)     [off]\n"
        "  --rate R           arrivals per kilocycle, = traffic.rate "
        "[50]\n"
        "  --tenants N        address-partitioned tenants, = tenant.count "
        "[1]\n"
        "  --trace FILE       DRAMSim-style trace, = traffic.trace\n"
        "                     (implies --traffic trace)\n"
        "  --jobs N           threads for the alone-IPC baselines [1]\n"
        "  --config FILE      key=value config file (layered first)\n"
        "  --set key=value    one config override (repeatable)\n"
        "  --list             print refresh mechanisms, DRAM specs and "
        "maps\n"
        "  --list-mechs       print the registered refresh mechanisms\n"
        "  --list-specs       print the registered DRAM specs\n"
        "  --list-maps        print the registered address maps\n"
        "  --list-keys        print every config key --set accepts\n"
        "  --list-benchmarks  print the benchmark catalogue\n"
        "\nDSARP_SET=\"key=value,...\" in the environment is applied\n"
        "between --config and the other flags.\n");
}

void
listMechs()
{
    const auto &registry = RefreshPolicyRegistry::instance();
    for (const std::string &name : registry.names())
        std::printf("%-10s %s\n", name.c_str(),
                    registry.find(name)->summary.c_str());
}

void
listSpecs()
{
    const auto &registry = DramSpecRegistry::instance();
    for (const std::string &name : registry.names()) {
        const DramSpec *spec = registry.find(name);
        std::printf("%-12s tCK %5.3f ns  %s\n", name.c_str(), spec->tCkNs.ns(),
                    spec->summary.c_str());
    }
}

void
listMaps()
{
    const auto &registry = AddressMapRegistry::instance();
    for (const std::string &name : registry.names())
        std::printf("%-12s %s\n", name.c_str(),
                    registry.find(name)->summary.c_str());
}

void
listAll()
{
    std::printf("refresh mechanisms (--mech):\n");
    listMechs();
    std::printf("\nDRAM specs (--spec / --set dram.spec=...):\n");
    listSpecs();
    std::printf("\naddress maps (--map / --set address.map=...):\n");
    listMaps();
}

void
listBenchmarks()
{
    std::printf("%-20s %6s %9s %5s %10s\n", "name", "MPKI", "locality",
                "wb%", "intensive");
    for (const Benchmark &b : benchmarkTable()) {
        std::printf("%-20s %6.1f %9.2f %4.0f%% %10s\n", b.name.c_str(),
                    b.profile.mpki, b.profile.rowLocality,
                    b.profile.writebackFraction * 100,
                    b.isIntensive() ? "yes" : "no");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliResult cli =
        parseCommandLine(std::vector<std::string>(argv + 1, argv + argc));
    switch (cli.action) {
      case CliAction::Help:
        usage();
        return 0;
      case CliAction::ListAll:
        listAll();
        return 0;
      case CliAction::ListMechs:
        listMechs();
        return 0;
      case CliAction::ListSpecs:
        listSpecs();
        return 0;
      case CliAction::ListMaps:
        listMaps();
        return 0;
      case CliAction::ListKeys:
        for (const std::string &key : ExperimentConfig::knownKeys())
            std::printf("%s\n", key.c_str());
        return 0;
      case CliAction::ListBenchmarks:
        listBenchmarks();
        return 0;
      case CliAction::Error:
        std::fprintf(stderr, "%s\n", cli.error.c_str());
        if (cli.unknownOption)
            usage();
        return 1;
      case CliAction::Run:
        break;
    }
    const ExperimentConfig &cfg = cli.config;
    const int jobs = cli.jobs;

    Simulation sim = Simulation::builder().config(cfg).build();

    std::printf("mechanism  : %s\n", sim.mechanismName().c_str());
    std::printf("dram spec  : %s (tCK %.3f ns)\n",
                sim.dramSpecName().c_str(), sim.dramSpec().tCkNs.ns());
    std::printf("density    : %dGb, retention %d ms, %d subarrays/bank\n",
                cfg.densityGb, cfg.retentionMs, cfg.subarraysPerBank);
    const MemOrg org = sim.resolvedOrg();
    std::printf("topology   : %d channels x %d ranks x %d banks, "
                "map: %s\n",
                org.channels, org.ranksPerChannel, org.banksPerRank,
                sim.addressMapName().c_str());
    std::printf("system     : %d cores, %llu+%llu cycles\n", cfg.numCores,
                static_cast<unsigned long long>(sim.warmupTicks()),
                static_cast<unsigned long long>(sim.measureTicks()));
    if (cfg.traffic.enabled()) {
        if (cfg.traffic.mode == "trace") {
            std::printf("traffic    : trace replay of %s\n",
                        cfg.traffic.tracePath.c_str());
        } else {
            std::printf("traffic    : %s, %.1f req/kcycle, %d%% reads, "
                        "%d tenant%s\n",
                        cfg.traffic.mode.c_str(),
                        cfg.traffic.ratePerKilocycle, cfg.traffic.readPct,
                        cfg.traffic.tenants,
                        cfg.traffic.tenants == 1 ? "" : "s");
        }
    }

    // Baselines first (sharded when --jobs > 1) so the timed run below
    // measures only the constrained simulation.
    sim.prewarmBaselines(jobs);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult res = sim.run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    const double simCycles = static_cast<double>(sim.warmupTicks()) +
                             static_cast<double>(sim.measureTicks());
    std::printf("engine     : %s, %d jobs, %.2fs wall "
                "(%.3g sim-cycles/sec)\n",
                sim.config().engine.c_str(), jobs, wall,
                wall > 0 ? simCycles / wall : 0.0);

    if (!res.ipc.empty()) {
        std::printf("\n%-20s %8s %8s %9s\n", "core/benchmark", "IPC",
                    "alone", "slowdown");
        for (std::size_t c = 0; c < res.ipc.size(); ++c) {
            std::printf("%-20s %8.3f %8.3f %8.2fx\n",
                        benchmarkTable()[sim.workload().benchIdx[c]]
                            .name.c_str(),
                        res.ipc[c], res.aloneIpc[c],
                        res.aloneIpc[c] / res.ipc[c]);
        }
        std::printf("\nweighted speedup   : %.3f\n", res.ws);
        std::printf("harmonic speedup   : %.3f\n", res.hs);
        std::printf("max slowdown       : %.2fx\n", res.maxSlowdown);
    }
    if (!res.tenants.empty()) {
        std::printf("\n%-8s %4s %9s %9s %8s %8s %8s %8s %9s\n", "tenant",
                    "prio", "generated", "injected", "mean", "p50",
                    "p99", "p99.9", "slowdown");
        for (std::size_t t = 0; t < res.tenants.size(); ++t) {
            const TenantResult &tr = res.tenants[t];
            std::printf("%-8zu %4d %9llu %9llu %8.1f %8.0f %8.0f %8.0f "
                        "%8.2fx\n",
                        t, tr.priority,
                        static_cast<unsigned long long>(tr.generated),
                        static_cast<unsigned long long>(tr.injected),
                        tr.meanLatency, tr.p50, tr.p99, tr.p999,
                        tr.slowdown);
        }
        std::printf("\ntenant fairness    : %.2fx max-slowdown\n",
                    res.tenantFairness);
    }
    if (res.readLatency.count() > 0) {
        std::printf("%sread latency       : mean %.1f, p50 %.0f, "
                    "p99 %.0f, p99.9 %.0f cycles\n",
                    res.tenants.empty() ? "\n" : "",
                    res.readLatency.mean(), res.readLatency.percentile(50),
                    res.readLatency.percentile(99),
                    res.readLatency.percentile(99.9));
    }
    std::printf("reads / writes     : %llu / %llu\n",
                static_cast<unsigned long long>(res.readsCompleted),
                static_cast<unsigned long long>(res.writesIssued));
    std::printf("REFab / REFpb cmds : %llu / %llu\n",
                static_cast<unsigned long long>(res.refAb),
                static_cast<unsigned long long>(res.refPb));
    if (res.refSb > 0) {
        std::printf("REFsb slices       : %llu\n",
                    static_cast<unsigned long long>(res.refSb));
    }
    if (res.refPbHidden > 0) {
        std::printf("hidden (HiRA)      : %llu\n",
                    static_cast<unsigned long long>(res.refPbHidden));
    }
    // Gate on residency, not entries: a residency straddling the
    // warmup stats reset has ticks (billed at IDD6) in the measured
    // window but its SRE behind it, and must still be reported.
    if (res.srEnters > 0 || res.srTicks > 0) {
        std::printf("self-refresh       : %llu SRE / %llu SRX, "
                    "%llu rank-ticks\n",
                    static_cast<unsigned long long>(res.srEnters),
                    static_cast<unsigned long long>(res.srExits),
                    static_cast<unsigned long long>(res.srTicks));
    }
    // Shown whenever staggering is configured (even a clean zero is
    // the result the knob exists to produce), or when overlap occurred.
    if (res.refOverlapTicks > 0 || cfg.channelStagger != 0) {
        std::printf("refresh overlap    : %llu channel-ticks\n",
                    static_cast<unsigned long long>(res.refOverlapTicks));
    }
    std::printf("energy per access  : %.2f nJ\n", res.energyPerAccessNj);
    return 0;
}
