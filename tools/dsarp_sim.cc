/**
 * @file
 * dsarp_sim: command-line front end for one-off simulations.
 *
 * Usage:
 *   dsarp_sim [--mech NAME] [--density 8|16|32] [--cores N]
 *             [--retention 32|64] [--subarrays N] [--cycles N]
 *             [--warmup N] [--seed N] [--workload-seed N]
 *             [--intensity 0|25|50|75|100] [--list-benchmarks] [--help]
 *
 * Mechanisms: NoREF REFab REFpb Elastic DARP SARPab SARPpb DSARP
 *             FGR2x FGR4x AR
 *
 * Prints the workload composition, per-core IPC against the alone-run
 * baseline, WS/HS/max-slowdown, refresh counters, and the energy
 * breakdown -- the same numbers the paper's tables are built from.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace dsarp;

namespace {

struct Options
{
    std::string mech = "DSARP";
    int densityGb = 32;
    int cores = 8;
    int retention = 32;
    int subarrays = 8;
    std::uint64_t seed = 1;
    std::uint64_t workloadSeed = 1;
    int intensity = 100;
};

void
usage()
{
    std::printf(
        "dsarp_sim -- run one workload under one refresh mechanism\n\n"
        "  --mech NAME        NoREF REFab REFpb Elastic DARP SARPab\n"
        "                     SARPpb DSARP FGR2x FGR4x AR  [DSARP]\n"
        "  --density GB       8 | 16 | 32                  [32]\n"
        "  --cores N          2..8                         [8]\n"
        "  --retention MS     32 | 64                      [32]\n"
        "  --subarrays N      subarrays per bank           [8]\n"
        "  --cycles N         measured DRAM cycles  (env DSARP_BENCH_CYCLES)\n"
        "  --warmup N         warmup DRAM cycles    (env DSARP_BENCH_WARMUP)\n"
        "  --seed N           simulator seed               [1]\n"
        "  --workload-seed N  workload mix seed            [1]\n"
        "  --intensity PCT    0|25|50|75|100 intensive mix [100]\n"
        "  --list-benchmarks  print the benchmark catalogue\n");
}

RunConfig
configFor(const Options &opt)
{
    const Density d = opt.densityGb == 8 ? Density::k8Gb
        : opt.densityGb == 16            ? Density::k16Gb
                                         : Density::k32Gb;
    RunConfig cfg;
    if (opt.mech == "NoREF")
        cfg = mechNoRef(d);
    else if (opt.mech == "REFab")
        cfg = mechRefAb(d);
    else if (opt.mech == "REFpb")
        cfg = mechRefPb(d);
    else if (opt.mech == "Elastic")
        cfg = mechElastic(d);
    else if (opt.mech == "DARP")
        cfg = mechDarp(d);
    else if (opt.mech == "SARPab")
        cfg = mechSarpAb(d);
    else if (opt.mech == "SARPpb")
        cfg = mechSarpPb(d);
    else if (opt.mech == "DSARP")
        cfg = mechDsarp(d);
    else if (opt.mech == "FGR2x") {
        cfg = mechRefAb(d);
        cfg.refresh = RefreshMode::kFgr2x;
    } else if (opt.mech == "FGR4x") {
        cfg = mechRefAb(d);
        cfg.refresh = RefreshMode::kFgr4x;
    } else if (opt.mech == "AR") {
        cfg = mechRefAb(d);
        cfg.refresh = RefreshMode::kAdaptive;
    } else {
        std::fprintf(stderr, "unknown mechanism '%s'\n",
                     opt.mech.c_str());
        std::exit(1);
    }
    cfg.numCores = opt.cores;
    cfg.retentionMs = opt.retention;
    cfg.subarraysPerBank = opt.subarrays;
    cfg.seed = opt.seed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-benchmarks") {
            std::printf("%-20s %6s %9s %5s %10s\n", "name", "MPKI",
                        "locality", "wb%", "intensive");
            for (const Benchmark &b : benchmarkTable()) {
                std::printf("%-20s %6.1f %9.2f %4.0f%% %10s\n",
                            b.name.c_str(), b.profile.mpki,
                            b.profile.rowLocality,
                            b.profile.writebackFraction * 100,
                            b.isIntensive() ? "yes" : "no");
            }
            return 0;
        } else if (arg == "--mech") {
            opt.mech = value();
        } else if (arg == "--density") {
            opt.densityGb = std::atoi(value());
        } else if (arg == "--cores") {
            opt.cores = std::atoi(value());
        } else if (arg == "--retention") {
            opt.retention = std::atoi(value());
        } else if (arg == "--subarrays") {
            opt.subarrays = std::atoi(value());
        } else if (arg == "--cycles") {
            setenv("DSARP_BENCH_CYCLES", value(), 1);
        } else if (arg == "--warmup") {
            setenv("DSARP_BENCH_WARMUP", value(), 1);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--workload-seed") {
            opt.workloadSeed = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--intensity") {
            opt.intensity = std::atoi(value());
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
            return 1;
        }
    }

    // Build the requested workload: one category, one mix.
    const auto mixes = makeWorkloads(1, opt.cores, opt.workloadSeed);
    const Workload *workload = nullptr;
    for (const Workload &w : mixes) {
        if (w.categoryPct == opt.intensity)
            workload = &w;
    }
    if (!workload) {
        std::fprintf(stderr, "intensity must be 0/25/50/75/100\n");
        return 1;
    }

    Runner runner;
    const RunConfig cfg = configFor(opt);

    std::printf("mechanism  : %s\n", cfg.mechanismName().c_str());
    std::printf("density    : %dGb, retention %d ms, %d subarrays/bank\n",
                opt.densityGb, opt.retention, opt.subarrays);
    std::printf("system     : %d cores, %llu+%llu cycles\n", opt.cores,
                static_cast<unsigned long long>(runner.warmupTicks()),
                static_cast<unsigned long long>(runner.measureTicks()));

    const RunResult res = runner.run(cfg, *workload);

    std::printf("\n%-20s %8s %8s %9s\n", "core/benchmark", "IPC",
                "alone", "slowdown");
    for (std::size_t c = 0; c < res.ipc.size(); ++c) {
        std::printf("%-20s %8.3f %8.3f %8.2fx\n",
                    benchmarkTable()[workload->benchIdx[c]].name.c_str(),
                    res.ipc[c], res.aloneIpc[c],
                    res.aloneIpc[c] / res.ipc[c]);
    }
    std::printf("\nweighted speedup   : %.3f\n", res.ws);
    std::printf("harmonic speedup   : %.3f\n", res.hs);
    std::printf("max slowdown       : %.2fx\n", res.maxSlowdown);
    std::printf("reads / writes     : %llu / %llu\n",
                static_cast<unsigned long long>(res.readsCompleted),
                static_cast<unsigned long long>(res.writesIssued));
    std::printf("REFab / REFpb cmds : %llu / %llu\n",
                static_cast<unsigned long long>(res.refAb),
                static_cast<unsigned long long>(res.refPb));
    std::printf("energy per access  : %.2f nJ\n", res.energyPerAccessNj);
    return 0;
}
