#!/usr/bin/env python3
"""Repo-specific lint for invariants the compiler cannot see.

Five checks, each born from a real bug class in this codebase:

1. unit-honest-conversion -- no raw arithmetic against the clock
   period (``/ tCkNs`` or ``* tCkNs``) outside the two blessed
   translation units, src/dram/timing.cc and src/dram/spec.cc.  Every
   other file must convert through TimingParams::nsToCycles /
   nsToCyclesFloor (this is the bug class that once understated
   LPDDR4 refresh energy 2x).

2. config-key-once -- every ExperimentConfig key string is declared
   exactly once, in src/sim/config_keys.hh.  A bare string literal
   under src/ that respells a known key (e.g. "refresh.fgrRate")
   forks the user-facing vocabulary; library code must reference the
   keys::k* constant instead.  Comments, and tests/tools that
   exercise the public string API the way a user would, are exempt;
   only exact standalone literals in src/ code are flagged.

3. registrar-once -- every DSARP_REGISTER_REFRESH_POLICY /
   DSARP_REGISTER_DRAM_SPEC / DSARP_REGISTER_ADDRESS_MAP identifier
   appears in exactly one
   translation unit.  A copy-pasted registrar aborts at startup in
   every binary; catch it before the build does.

4. single-thread-spawn-point -- no raw ``std::thread`` /
   ``std::jthread`` / ``std::async`` under src/, bench/, or tools/
   outside the audited spawn point src/sim/parallel.{hh,cc}.  Every
   parallel path must funnel through parallelFor()/SweepRunner so it
   inherits their exception handling and byte-identical-results
   contract; an ad-hoc thread next to the shared alone-IPC memo is a
   data race waiting for a TSan run to find it.  Static queries
   (``std::thread::hardware_concurrency``) and tests/ (which probe
   thread-cleanliness on purpose) are exempt.

5. selftest-coverage -- every mechanically-checked contract carries
   the seed that proves its checker still fires: each rule in
   tools/analyze/dsarp_analyze.py RULES has a SELF_TEST_SEEDS entry,
   each tests/fuzz/fuzz_*.cc harness has a non-empty seed corpus
   under tests/fuzz/corpus/<name>/, and each ``#define
   DSARP_REGISTER_*`` registrar family under src/ is matched by this
   linter's REGISTRAR_RE (check 3).  A checker without a seed rots
   silently: the gate keeps passing after the check stops firing.

Exit status 0 when clean, 1 with findings (one ``file:line: message``
per line), 2 on usage errors.  ``--self-test`` seeds one violation of
each invariant in a temp tree and asserts the linter reports it.
"""

import argparse
import re
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent

# Files allowed to do raw tCK arithmetic: the single-point conversion
# implementations themselves.
CONVERSION_TUS = {
    Path("src/dram/timing.cc"),
    Path("src/dram/spec.cc"),
}

# Unit-blind arithmetic against the clock period.  The explicit
# `.ns()` escape hatch is excluded: it is the documented way to read
# the raw figure for printing and for energy math (mA x ns), where no
# ns -> cycles conversion is happening.
RAW_TCK_RE = re.compile(
    r"[*/]\s*(?:\w+(?:\.|->))?tCkNs\b(?!\s*\.\s*ns\(\))"
    r"|\btCkNs\s*[*/]")
COMMENT_RE = re.compile(r"^\s*(?://|\*|/\*)")

STRING_LIT_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
REGISTRAR_RE = re.compile(
    r"DSARP_REGISTER_(?:REFRESH_POLICY|DRAM_SPEC|ADDRESS_MAP)"
    r"\(\s*(\w+)")

# The audited thread-spawn point (see src/sim/parallel.hh).
THREAD_SPAWN_TUS = {
    Path("src/sim/parallel.hh"),
    Path("src/sim/parallel.cc"),
}

# A raw thread spawn: std::thread/std::jthread used as a type (the
# `::` lookahead exempts static queries like hardware_concurrency),
# or any std::async launch.
THREAD_SPAWN_RE = re.compile(
    r"std::j?thread\b(?!\s*::)|std::async\b")

SOURCE_GLOBS = ("src/**/*.cc", "src/**/*.hh", "tests/*.cc",
                "bench/*.cc", "bench/*.hh", "tools/*.cc",
                "examples/*.cpp")


def source_files(root):
    out = []
    for pattern in SOURCE_GLOBS:
        out.extend(sorted(root.glob(pattern)))
    return out


def config_keys(root):
    """Key literals declared in config_keys.hh, in declaration order."""
    header = root / "src/sim/config_keys.hh"
    if not header.exists():
        return []
    keys = []
    for line in header.read_text().splitlines():
        if "constexpr char" not in line:
            continue
        m = STRING_LIT_RE.search(line)
        if m:
            keys.append(m.group(1))
    return keys


def check_unit_conversions(root, findings):
    for path in source_files(root):
        rel = path.relative_to(root)
        if rel in CONVERSION_TUS:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if COMMENT_RE.match(line):
                continue
            if RAW_TCK_RE.search(line):
                findings.append(
                    f"{rel}:{lineno}: raw tCK arithmetic outside "
                    "timing.cc/spec.cc; convert via "
                    "TimingParams::nsToCycles")


def check_config_keys(root, findings):
    keys = set(config_keys(root))
    if not keys:
        findings.append(
            "src/sim/config_keys.hh: missing or declares no keys")
        return
    header = Path("src/sim/config_keys.hh")
    for path in source_files(root):
        rel = path.relative_to(root)
        if rel == header or rel.parts[0] != "src":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if COMMENT_RE.match(line):
                continue
            for m in STRING_LIT_RE.finditer(line):
                if m.group(1) in keys:
                    findings.append(
                        f"{rel}:{lineno}: config key "
                        f"\"{m.group(1)}\" respelled; use the keys::k* "
                        "constant from sim/config_keys.hh")
    seen = {}
    for lineno, line in enumerate(
            (root / header).read_text().splitlines(), 1):
        if "constexpr char" not in line:
            continue
        m = STRING_LIT_RE.search(line)
        if m and m.group(1) in seen:
            findings.append(
                f"{header}:{lineno}: key \"{m.group(1)}\" declared "
                f"twice (first at line {seen[m.group(1)]})")
        elif m:
            seen[m.group(1)] = lineno


def check_registrars(root, findings):
    owners = {}
    for path in source_files(root):
        rel = path.relative_to(root)
        if path.suffix != ".cc":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for m in REGISTRAR_RE.finditer(line):
                ident = m.group(1)
                if ident in owners:
                    prev_rel, prev_line = owners[ident]
                    findings.append(
                        f"{rel}:{lineno}: registry entry '{ident}' "
                        f"also registered at {prev_rel}:{prev_line}; "
                        "each entry must live in exactly one TU")
                else:
                    owners[ident] = (rel, lineno)


def check_thread_spawns(root, findings):
    for path in source_files(root):
        rel = path.relative_to(root)
        if rel in THREAD_SPAWN_TUS or rel.parts[0] == "tests":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if COMMENT_RE.match(line):
                continue
            if THREAD_SPAWN_RE.search(line):
                findings.append(
                    f"{rel}:{lineno}: raw thread spawn outside "
                    "src/sim/parallel.*; route through parallelFor/"
                    "SweepRunner (the audited spawn point)")


ANALYZER_REL = Path("tools/analyze/dsarp_analyze.py")
RULES_NAME_RE = re.compile(r'^\s*"([a-z][a-z-]*)"')
REGISTRAR_DEFINE_RE = re.compile(r"#define\s+DSARP_REGISTER_(\w+)\s*\(")


def _block_names(text, opener, closer):
    """String names inside a top-level ``NAME = (``/``{`` block."""
    names, active = [], False
    for line in text.splitlines():
        if line.startswith(opener):
            active = True
            continue
        if active and line.startswith(closer):
            break
        if active:
            m = RULES_NAME_RE.match(line)
            if m:
                names.append(m.group(1))
    return names


def check_selftest_coverage(root, findings):
    # a) Every analyzer rule has a seeded self-test violation.
    analyzer = root / ANALYZER_REL
    if analyzer.exists():
        text = analyzer.read_text()
        rules = _block_names(text, "RULES = (", ")")
        seeds = set(_block_names(text, "SELF_TEST_SEEDS = {", "}"))
        for rule in rules:
            if rule not in seeds:
                findings.append(
                    f"{ANALYZER_REL}: rule '{rule}' has no "
                    "SELF_TEST_SEEDS entry; a rule without a seeded "
                    "violation can silently stop firing")

    # b) Every fuzz harness has a non-empty seed corpus to replay.
    for harness in sorted(root.glob("tests/fuzz/fuzz_*.cc")):
        rel = harness.relative_to(root)
        corpus = root / "tests/fuzz/corpus" / harness.stem[len("fuzz_"):]
        seeded = corpus.is_dir() and any(
            p.is_file() for p in corpus.glob("*"))
        if not seeded:
            findings.append(
                f"{rel}: no seed corpus at "
                f"tests/fuzz/corpus/{harness.stem[len('fuzz_'):]}/; "
                "the ctest replay entry would assert nothing")

    # c) Every registrar macro family is known to check 3 above.
    for path in sorted(root.glob("src/**/*.hh")):
        rel = path.relative_to(root)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            m = REGISTRAR_DEFINE_RE.search(line)
            if m and m.group(1) not in REGISTRAR_RE.pattern:
                findings.append(
                    f"{rel}:{lineno}: registrar family "
                    f"'DSARP_REGISTER_{m.group(1)}' is not covered by "
                    "lint.py REGISTRAR_RE; duplicate registrations "
                    "would go unlinted")


def run_checks(root):
    findings = []
    check_unit_conversions(root, findings)
    check_config_keys(root, findings)
    check_registrars(root, findings)
    check_thread_spawns(root, findings)
    check_selftest_coverage(root, findings)
    return findings


def self_test():
    """Seed one violation per invariant; the linter must catch all."""
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "src/dram").mkdir(parents=True)
        (root / "src/sim").mkdir(parents=True)
        (root / "tests").mkdir()

        (root / "src/sim/config_keys.hh").write_text(
            'inline constexpr char kFgrRate[] = "refresh.fgrRate";\n')

        # 1. Raw tCK conversion outside the blessed TUs.
        (root / "src/dram/bad_convert.cc").write_text(
            "int cycles(double ns, double tCkNs)\n"
            "{ return static_cast<int>(ns / tCkNs); }\n")
        # 2. A respelled config key in library code (tests/tools may
        # spell keys out; src/ must not).
        (root / "src/sim/bad_key.cc").write_text(
            'const char *k = "refresh.fgrRate";\n')
        # 3. A registrar duplicated across two TUs.
        (root / "src/dram/reg_a.cc").write_text(
            "DSARP_REGISTER_DRAM_SPEC(ddr9, spec());\n")
        (root / "src/dram/reg_b.cc").write_text(
            "DSARP_REGISTER_DRAM_SPEC(ddr9, spec());\n")
        # 4. A raw thread spawn outside the audited spawn point.
        (root / "src/sim/bad_spawn.cc").write_text(
            "void f() { std::thread t([] {}); t.join(); }\n")
        # 5a. An analyzer rule with no seeded self-test violation.
        (root / "tools/analyze").mkdir(parents=True)
        (root / "tools/analyze/dsarp_analyze.py").write_text(
            'RULES = (\n    "seeded-rule",\n    "orphan-rule",\n)\n'
            'SELF_TEST_SEEDS = {\n'
            '    "seeded-rule": ("src/x.cc", "int x;"),\n'
            '}\n')
        # 5b. A fuzz harness with no seed corpus.
        (root / "tests/fuzz").mkdir(parents=True)
        (root / "tests/fuzz/fuzz_orphan.cc").write_text(
            "extern int LLVMFuzzerTestOneInput();\n")
        # 5c. A registrar family REGISTRAR_RE does not know about.
        (root / "src/sim/new_registry.hh").write_text(
            "#define DSARP_REGISTER_FROBNICATOR(ident, ...) x\n")

        findings = run_checks(root)
        for needle in ("raw tCK arithmetic", "respelled",
                       "exactly one TU", "raw thread spawn",
                       "no SELF_TEST_SEEDS entry", "no seed corpus",
                       "not covered by lint.py REGISTRAR_RE"):
            if not any(needle in f for f in findings):
                failures.append(f"self-test: no finding matching "
                                f"'{needle}' in {findings}")
        # The seeded rule must NOT be flagged (counterexample for 5a),
        # and known registrar families stay clean (5c).
        for f in findings:
            if "'seeded-rule'" in f:
                failures.append(f"self-test: covered rule flagged: {f}")
            if "DSARP_REGISTER_REFRESH_POLICY" in f:
                failures.append(
                    f"self-test: known registrar family flagged: {f}")

        # A harness with a seeded corpus is clean (counterexample 5b).
        (root / "tests/fuzz/corpus/orphan").mkdir(parents=True)
        (root / "tests/fuzz/corpus/orphan/seed1").write_text("x")
        for f in run_checks(root):
            if "no seed corpus" in f:
                failures.append(f"self-test: seeded corpus flagged: {f}")

        # The blessed TUs must stay allowed.
        (root / "src/dram/bad_convert.cc").unlink()
        (root / "src/dram/timing.cc").write_text(
            "int c(double ns, double tCkNs) { return int(ns / tCkNs); }\n")
        for f in run_checks(root):
            if "raw tCK" in f:
                failures.append(f"self-test: blessed TU flagged: {f}")

        # The audited spawn point, static queries, and tests/ must all
        # stay allowed.
        (root / "src/sim/bad_spawn.cc").unlink()
        (root / "src/sim/parallel.cc").write_text(
            "void pool() { std::thread t([] {}); t.join(); }\n")
        (root / "src/sim/query.cc").write_text(
            "unsigned n() { return std::thread::hardware_concurrency(); }\n")
        (root / "tests/test_spawn.cc").write_text(
            "void probe() { std::thread t([] {}); t.join(); }\n")
        for f in run_checks(root):
            if "thread spawn" in f:
                failures.append(f"self-test: exempt spawn flagged: {f}")

    # The real tree must currently be clean, or the lint gate is dead
    # on arrival.
    real = run_checks(REPO)
    for f in real:
        failures.append(f"self-test: real tree not clean: {f}")

    for msg in failures:
        print(msg)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="seed violations and assert detection")
    parser.add_argument("--root", type=Path, default=REPO,
                        help="tree to lint (default: the repo)")
    args = parser.parse_args()

    if args.self_test:
        rc = self_test()
        if rc == 0:
            print("lint self-test: all seeded violations caught")
        return rc

    findings = run_checks(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
